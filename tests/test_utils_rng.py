"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import SeedStream, as_generator, spawn_generators, spawn_seeds


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_distinct_ints_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough_shares_state(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(42)
        a = as_generator(ss).random(3)
        b = as_generator(np.random.SeedSequence(42)).random(3)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="seed must be"):
            as_generator("not a seed")


class TestSpawn:
    def test_spawn_counts(self):
        assert len(spawn_seeds(0, 4)) == 4
        assert len(spawn_generators(0, 3)) == 3

    def test_spawn_zero(self):
        assert spawn_seeds(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            spawn_seeds(0, -1)

    def test_children_are_independent(self):
        g1, g2 = spawn_generators(123, 2)
        assert not np.array_equal(g1.random(10), g2.random(10))

    def test_same_root_same_children(self):
        a = [g.random(4) for g in spawn_generators(9, 3)]
        b = [g.random(4) for g in spawn_generators(9, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestSeedStream:
    def test_successive_calls_do_not_repeat(self):
        stream = SeedStream(5)
        first = stream.generators(2)
        second = stream.generators(2)
        draws = [g.random(8) for g in first + second]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])

    def test_deterministic_in_root(self):
        a = SeedStream(11)
        b = SeedStream(11)
        a.generators(3)
        b.generators(3)
        np.testing.assert_array_equal(a.generator().random(5), b.generator().random(5))

    def test_generator_returns_single(self):
        assert isinstance(SeedStream(0).generator(), np.random.Generator)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SeedStream(0).seeds(-2)
