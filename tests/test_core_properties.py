"""Hypothesis property tests for the core algorithms.

The approximation guarantees are theorems about *any* metric input; we
check them against the exact oracle on random tiny instances, plus the
structural invariances (permutation, translation, scaling) that any
correct k-center implementation must satisfy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.exact import exact_kcenter
from repro.core.gonzalez import gonzalez, gonzalez_trace
from repro.core.hochbaum_shmoys import hochbaum_shmoys
from repro.core.mrg import mrg
from repro.metric.euclidean import EuclideanSpace

coords = st.floats(-100, 100, allow_nan=False, allow_infinity=False, width=64)


def tiny_instances(min_n=4, max_n=14):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.integers(1, 3)),
        elements=coords,
    )


@settings(max_examples=30, deadline=None)
@given(pts=tiny_instances(), k=st.integers(1, 3), seed=st.integers(0, 10))
def test_gonzalez_two_approximation(pts, k, seed):
    space = EuclideanSpace(pts)
    opt = exact_kcenter(space, k).radius
    got = gonzalez(space, k, seed=seed).radius
    assert got <= 2.0 * opt + 1e-6


@settings(max_examples=30, deadline=None)
@given(pts=tiny_instances(), k=st.integers(1, 3))
def test_hochbaum_shmoys_two_approximation(pts, k):
    space = EuclideanSpace(pts)
    opt = exact_kcenter(space, k).radius
    got = hochbaum_shmoys(space, k).radius
    assert got <= 2.0 * opt + 1e-6


@settings(max_examples=25, deadline=None)
@given(
    pts=tiny_instances(min_n=6),
    k=st.integers(1, 3),
    m=st.integers(2, 4),
    seed=st.integers(0, 10),
)
def test_mrg_four_approximation(pts, k, m, seed):
    space = EuclideanSpace(pts)
    opt = exact_kcenter(space, k).radius
    res = mrg(space, k, m=m, seed=seed)
    assert res.extra["total_rounds"] <= 2
    assert res.radius <= 4.0 * opt + 1e-6


@settings(max_examples=30, deadline=None)
@given(pts=tiny_instances(min_n=5), seed=st.integers(0, 5))
def test_gonzalez_radius_monotone_in_k(pts, seed):
    """More centers never increase the covering radius."""
    space = EuclideanSpace(pts)
    radii = [gonzalez(space, k, seed=seed).radius for k in (1, 2, 3, 4)]
    for a, b in zip(radii, radii[1:]):
        assert b <= a + 1e-9


@settings(max_examples=30, deadline=None)
@given(pts=tiny_instances(), k=st.integers(1, 3), seed=st.integers(0, 5))
def test_gonzalez_translation_invariant(pts, k, seed):
    """The objective value is translation invariant (same selections)."""
    a = gonzalez(EuclideanSpace(pts), k, first_center=0).radius
    b = gonzalez(EuclideanSpace(pts + 17.0), k, first_center=0).radius
    assert a == pytest.approx(b, abs=1e-6, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    pts=tiny_instances(),
    k=st.integers(1, 3),
    scale=st.floats(0.1, 50, allow_nan=False),
)
def test_gonzalez_scale_equivariant(pts, k, scale):
    a = gonzalez(EuclideanSpace(pts), k, first_center=0).radius
    b = gonzalez(EuclideanSpace(pts * scale), k, first_center=0).radius
    assert b == pytest.approx(a * scale, rel=1e-6, abs=1e-6)


@settings(max_examples=25, deadline=None)
@given(pts=tiny_instances(min_n=6), k=st.integers(1, 4), data=st.data())
def test_gonzalez_permutation_invariant_value(pts, k, data):
    """Relabelling points cannot change the greedy radius when the seed
    point is preserved."""
    n = len(pts)
    perm = data.draw(st.permutations(range(n)))
    perm = np.asarray(perm)
    a = gonzalez_trace(EuclideanSpace(pts), k, first_center=0)
    # Where did point 0 go under the permutation?  pts_perm[i] = pts[perm[i]].
    new_first = int(np.flatnonzero(perm == 0)[0])
    b = gonzalez_trace(EuclideanSpace(pts[perm]), k, first_center=new_first)
    # Selection-radius sequences may differ by argmax tie-breaks; the
    # resulting covering radius must agree up to those ties.
    assert a.radius == pytest.approx(b.radius, abs=1e-6) or (
        len(np.unique(np.round(a.selection_radii[1:], 6)))
        < len(a.selection_radii[1:])
    )


@settings(max_examples=25, deadline=None)
@given(pts=tiny_instances(), k=st.integers(1, 3))
def test_exact_is_a_lower_bound_for_everything(pts, k):
    # Strict comparison: the kernels' cancellation refinement recomputes
    # near-zero distances through the stable difference path, so the
    # oracle's GEMM-derived radii agree with the traversal's fused-path
    # radii to ordinary round-off even on near-duplicate instances.
    space = EuclideanSpace(pts)
    opt = exact_kcenter(space, k).radius
    assert opt <= gonzalez(space, k, seed=0).radius + 1e-9
    assert opt <= hochbaum_shmoys(space, k).radius + 1e-9


@settings(max_examples=25, deadline=None)
@given(pts=tiny_instances(min_n=5), seed=st.integers(0, 5))
def test_selection_radii_non_increasing_property(pts, seed):
    space = EuclideanSpace(pts)
    trace = gonzalez_trace(space, min(4, space.n), seed=seed)
    radii = trace.selection_radii[1:]
    assert all(radii[i] >= radii[i + 1] - 1e-9 for i in range(len(radii) - 1))
    # And the final covering radius never exceeds the last selection.
    if len(radii):
        assert trace.radius <= radii[-1] + 1e-9
