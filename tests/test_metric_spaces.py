"""Unit tests for the three MetricSpace implementations.

Every space type is pushed through the same conformance suite (the
algorithms only ever talk to the MetricSpace interface, so all concrete
spaces must behave identically up to the metric itself).
"""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.errors import MetricError
from repro.metric.base import DistCounter, as_index_array
from repro.metric.euclidean import EuclideanSpace
from repro.metric.minkowski import MinkowskiSpace
from repro.metric.precomputed import PrecomputedSpace


def _make_space(kind: str, points: np.ndarray):
    if kind == "euclidean":
        return EuclideanSpace(points), cdist(points, points)
    if kind == "l1":
        return MinkowskiSpace(points, p=1.0), cdist(points, points, "cityblock")
    if kind == "linf":
        return MinkowskiSpace(points, p=np.inf), cdist(points, points, "chebyshev")
    if kind == "p3":
        return (
            MinkowskiSpace(points, p=3.0),
            cdist(points, points, "minkowski", p=3.0),
        )
    if kind == "precomputed":
        d = cdist(points, points)
        return PrecomputedSpace(d), d
    raise AssertionError(kind)


SPACE_KINDS = ["euclidean", "l1", "linf", "p3", "precomputed"]


@pytest.fixture(params=SPACE_KINDS)
def space_and_oracle(request, rng):
    points = rng.normal(size=(30, 3))
    return _make_space(request.param, points)


class TestConformance:
    def test_len_and_n(self, space_and_oracle):
        space, oracle = space_and_oracle
        assert len(space) == space.n == oracle.shape[0]

    def test_dist_scalar(self, space_and_oracle):
        space, oracle = space_and_oracle
        assert space.dist(3, 17) == pytest.approx(oracle[3, 17], abs=1e-7)
        assert space.dist(5, 5) == pytest.approx(0.0, abs=1e-7)

    def test_dists_to(self, space_and_oracle):
        space, oracle = space_and_oracle
        idx = np.array([0, 4, 9], dtype=np.intp)
        np.testing.assert_allclose(space.dists_to(idx, 7), oracle[idx, 7], atol=1e-7)
        np.testing.assert_allclose(space.dists_to(None, 7), oracle[:, 7], atol=1e-7)

    def test_cross(self, space_and_oracle):
        space, oracle = space_and_oracle
        i = np.array([1, 2], dtype=np.intp)
        j = np.array([5, 6, 7], dtype=np.intp)
        np.testing.assert_allclose(space.cross(i, j), oracle[np.ix_(i, j)], atol=1e-7)

    def test_min_dists(self, space_and_oracle):
        space, oracle = space_and_oracle
        j = np.array([2, 11, 19], dtype=np.intp)
        np.testing.assert_allclose(
            space.min_dists(None, j), oracle[:, j].min(axis=1), atol=1e-7
        )

    def test_update_min_dists_monotone(self, space_and_oracle):
        space, oracle = space_and_oracle
        j1 = np.array([0], dtype=np.intp)
        j2 = np.array([8, 9], dtype=np.intp)
        current = space.min_dists(None, j1)
        space.update_min_dists(current, None, j2)
        expect = oracle[:, [0, 8, 9]].min(axis=1)
        np.testing.assert_allclose(current, expect, atol=1e-7)

    def test_nearest(self, space_and_oracle):
        space, oracle = space_and_oracle
        j = np.array([3, 12, 21], dtype=np.intp)
        pos, dist = space.nearest(None, j)
        block = oracle[:, j]
        np.testing.assert_array_equal(pos, block.argmin(axis=1))
        np.testing.assert_allclose(dist, block.min(axis=1), atol=1e-7)

    def test_local_view(self, space_and_oracle):
        space, oracle = space_and_oracle
        idx = np.array([4, 7, 15, 22], dtype=np.intp)
        local = space.local(idx)
        assert local.n == 4
        np.testing.assert_allclose(
            local.cross(None, None), oracle[np.ix_(idx, idx)], atol=1e-7
        )

    def test_local_shares_counter(self, space_and_oracle):
        space, _ = space_and_oracle
        local = space.local(np.array([0, 1, 2], dtype=np.intp))
        assert local.counter is space.counter

    def test_counter_counts(self, space_and_oracle):
        space, _ = space_and_oracle
        space.counter.reset()
        space.min_dists(None, np.array([0, 1], dtype=np.intp))
        assert space.counter.evals == 2 * space.n

    def test_covering_radius(self, space_and_oracle):
        space, oracle = space_and_oracle
        centers = np.array([0, 15], dtype=np.intp)
        expect = oracle[:, centers].min(axis=1).max()
        assert space.covering_radius(centers) == pytest.approx(expect, abs=1e-7)

    def test_out_of_range_index(self, space_and_oracle):
        space, _ = space_and_oracle
        with pytest.raises(MetricError, match="out of range"):
            space.dists_to(np.array([space.n], dtype=np.intp), 0)

    def test_empty_reference_errors(self, space_and_oracle):
        space, _ = space_and_oracle
        with pytest.raises(MetricError):
            space.min_dists(None, np.empty(0, dtype=np.intp))
        with pytest.raises(MetricError):
            space.nearest(None, np.empty(0, dtype=np.intp))


class TestEuclideanSpecifics:
    def test_dim(self, rng):
        assert EuclideanSpace(rng.normal(size=(5, 7))).dim == 7

    def test_1d_input(self):
        space = EuclideanSpace([0.0, 3.0, 7.0])
        assert space.dim == 1
        assert space.dist(0, 2) == pytest.approx(7.0)

    def test_chunked_matches_dense(self, rng):
        pts = rng.normal(size=(300, 2))
        a = EuclideanSpace(pts)
        b = EuclideanSpace(pts, block_bytes=2048)
        j = np.arange(40, dtype=np.intp)
        np.testing.assert_allclose(a.min_dists(None, j), b.min_dists(None, j), atol=1e-12)
        pa, da = a.nearest(None, j)
        pb, db = b.nearest(None, j)
        np.testing.assert_array_equal(pa, pb)
        np.testing.assert_allclose(da, db, atol=1e-12)


class TestMinkowskiSpecifics:
    def test_p_below_one_rejected(self, rng):
        with pytest.raises(MetricError, match="triangle"):
            MinkowskiSpace(rng.normal(size=(4, 2)), p=0.5)

    def test_p_nan_rejected(self, rng):
        with pytest.raises(MetricError):
            MinkowskiSpace(rng.normal(size=(4, 2)), p=float("nan"))

    def test_p2_matches_euclidean(self, rng):
        pts = rng.normal(size=(25, 3))
        e = EuclideanSpace(pts)
        m = MinkowskiSpace(pts, p=2.0)
        j = np.array([1, 5], dtype=np.intp)
        np.testing.assert_allclose(e.min_dists(None, j), m.min_dists(None, j), atol=1e-7)


class TestPrecomputedSpecifics:
    def test_validation_catches_asymmetry(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(MetricError, match="symmetric"):
            PrecomputedSpace(d)

    def test_validation_catches_negative(self):
        d = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(MetricError, match="negative"):
            PrecomputedSpace(d)

    def test_validation_catches_nonzero_diagonal(self):
        d = np.array([[1.0, 2.0], [2.0, 0.0]])
        with pytest.raises(MetricError, match="diagonal"):
            PrecomputedSpace(d)

    def test_non_square_rejected(self):
        with pytest.raises(MetricError, match="square"):
            PrecomputedSpace(np.zeros((2, 3)))

    def test_validate_false_skips_checks(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        space = PrecomputedSpace(d, validate=False)
        assert space.dist(0, 1) == 1.0


class TestIndexValidation:
    def test_as_index_array_bounds(self):
        with pytest.raises(MetricError, match="out of range"):
            as_index_array([-1], 5)
        with pytest.raises(MetricError, match="out of range"):
            as_index_array([5], 5)

    def test_as_index_array_2d_rejected(self):
        with pytest.raises(MetricError, match="1-D"):
            as_index_array(np.zeros((2, 2), dtype=int), 5)

    def test_counter_add_and_reset(self):
        c = DistCounter()
        c.add(5)
        c.add(2)
        assert c.evals == 7
        c.reset()
        assert c.evals == 0
