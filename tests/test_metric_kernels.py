"""Unit tests for the chunked distance kernels against a scipy oracle."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.errors import MetricError
from repro.metric import kernels


@pytest.fixture
def xy(rng):
    return rng.normal(size=(37, 4)), rng.normal(size=(23, 4))


class TestAsPoints:
    def test_1d_promoted_to_column(self):
        out = kernels.as_points(np.arange(5.0))
        assert out.shape == (5, 1)

    def test_dtype_and_contiguity(self):
        out = kernels.as_points(np.arange(6, dtype=np.int32).reshape(3, 2))
        assert out.dtype == np.float64 and out.flags.c_contiguous

    def test_rejects_3d(self):
        with pytest.raises(MetricError, match="2-D"):
            kernels.as_points(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(MetricError, match="non-finite"):
            kernels.as_points(np.array([[1.0, np.nan]]))


class TestSqDistsBlock:
    def test_matches_cdist(self, xy):
        x, y = xy
        out = kernels.sq_dists_block(x, y)
        np.testing.assert_allclose(out, cdist(x, y) ** 2, atol=1e-9)

    def test_precomputed_norms(self, xy):
        x, y = xy
        x_sq = np.einsum("ij,ij->i", x, x)
        y_sq = np.einsum("ij,ij->i", y, y)
        out = kernels.sq_dists_block(x, y, x_sq, y_sq)
        np.testing.assert_allclose(out, cdist(x, y) ** 2, atol=1e-9)

    def test_roundoff_clipped_nonnegative(self):
        # Identical far-from-origin points provoke catastrophic cancellation.
        x = np.full((4, 3), 1e8)
        out = kernels.sq_dists_block(x, x.copy())
        assert (out >= 0).all()

    def test_cancellation_refined_to_stable_path(self, rng):
        # Near-duplicate points far from the origin: the raw GEMM
        # expansion is only good to ~ulps of |x|^2 (absolute), which is
        # noise at these separations.  The refinement must recompute
        # such entries via the difference path, bit-equal to the fused
        # point kernel.
        base = np.full((1, 8), 97.0)
        x = base + rng.normal(scale=1e-7, size=(40, 8))
        out = kernels.sq_dists_block(x, x.copy())
        want = np.stack([kernels.dists_to_point(x, p) for p in x], axis=1)
        # Every entry of this instance is below the refinement threshold,
        # so the block kernel and the fused point kernel must agree in
        # distance space bit-for-bit.
        np.testing.assert_array_equal(np.sqrt(out), want)

    def test_refinement_is_blocking_independent(self, rng):
        # Per-entry refinement: the same pair must get the same bits
        # whether its row arrives in a wide block or alone.
        x = np.full((6, 4), 50.0) + rng.normal(scale=1e-6, size=(6, 4))
        y = x[::-1].copy()
        whole = kernels.sq_dists_block(x, y)
        rows = np.concatenate(
            [kernels.sq_dists_block(x[i : i + 2], y) for i in range(0, 6, 2)]
        )
        np.testing.assert_array_equal(whole, rows)

    def test_dim_mismatch(self):
        with pytest.raises(MetricError, match="dimension mismatch"):
            kernels.sq_dists_block(np.zeros((2, 3)), np.zeros((2, 4)))


class TestPairwiseDists:
    def test_matches_cdist(self, xy):
        x, y = xy
        np.testing.assert_allclose(kernels.pairwise_dists(x, y), cdist(x, y), atol=1e-9)

    def test_dense_cap_enforced(self, monkeypatch):
        monkeypatch.setattr(kernels, "MAX_DENSE_ELEMENTS", 10)
        with pytest.raises(MetricError, match="refusing to materialise"):
            kernels.pairwise_dists(np.zeros((4, 2)), np.zeros((4, 2)))


class TestDistsToPoint:
    def test_matches_cdist(self, xy):
        x, y = xy
        np.testing.assert_allclose(
            kernels.dists_to_point(x, y[0]), cdist(x, y[:1]).ravel(), atol=1e-9
        )


class TestMinDists:
    def test_matches_oracle(self, xy):
        x, y = xy
        np.testing.assert_allclose(
            kernels.min_dists(x, y), cdist(x, y).min(axis=1), atol=1e-9
        )

    def test_chunked_equals_unchunked(self, rng):
        x = rng.normal(size=(500, 3))
        y = rng.normal(size=(41, 3))
        big = kernels.min_dists(x, y)
        tiny_blocks = kernels.min_dists(x, y, block_bytes=4096)
        np.testing.assert_allclose(big, tiny_blocks, atol=1e-12)

    def test_empty_reference_rejected(self):
        with pytest.raises(MetricError, match="non-empty"):
            kernels.min_dists(np.zeros((3, 2)), np.zeros((0, 2)))


class TestUpdateMinDists:
    def test_in_place_and_monotone(self, xy):
        x, y = xy
        current = np.full(len(x), 5.0)
        before = current.copy()
        out = kernels.update_min_dists(current, x, y)
        assert out is current
        assert (current <= before).all()
        oracle = np.minimum(before, cdist(x, y).min(axis=1))
        np.testing.assert_allclose(current, oracle, atol=1e-9)

    def test_single_reference_fast_path(self, xy):
        x, y = xy
        current = np.full(len(x), np.inf)
        kernels.update_min_dists(current, x, y[:1])
        np.testing.assert_allclose(current, cdist(x, y[:1]).ravel(), atol=1e-9)

    def test_empty_reference_noop(self, xy):
        x, _ = xy
        current = np.full(len(x), 3.0)
        kernels.update_min_dists(current, x, np.empty((0, 4)))
        assert (current == 3.0).all()

    def test_shape_mismatch(self, xy):
        x, y = xy
        with pytest.raises(MetricError, match="current has shape"):
            kernels.update_min_dists(np.zeros(5), x, y)
