"""Unit tests for metric-axiom checking."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metric.euclidean import EuclideanSpace
from repro.metric.minkowski import MinkowskiSpace
from repro.metric.precomputed import PrecomputedSpace
from repro.metric.validation import check_metric_axioms


class TestCheckMetricAxioms:
    def test_euclidean_passes(self, rng):
        assert check_metric_axioms(EuclideanSpace(rng.normal(size=(50, 3))))

    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0, np.inf])
    def test_minkowski_passes(self, rng, p):
        assert check_metric_axioms(MinkowskiSpace(rng.normal(size=(30, 4)), p=p))

    def test_triangle_violation_detected(self):
        # d(0,2) = 10 but d(0,1) + d(1,2) = 2: blatant violation.
        d = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        space = PrecomputedSpace(d, validate=False)
        with pytest.raises(MetricError, match="triangle"):
            check_metric_axioms(space)
        assert check_metric_axioms(space, raise_on_failure=False) is False

    def test_empty_space_passes(self):
        assert check_metric_axioms(PrecomputedSpace(np.zeros((0, 0))))

    def test_max_points_prefix(self, rng):
        # A big space is only checked on its prefix: should still pass fast.
        space = EuclideanSpace(rng.normal(size=(5000, 2)))
        assert check_metric_axioms(space, max_points=64)

    def test_near_degenerate_points_pass(self):
        # Coincident and collinear points are valid metric configurations.
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        assert check_metric_axioms(EuclideanSpace(pts))
