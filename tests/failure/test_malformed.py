"""Failure injection: malformed inputs and degenerate geometries.

Every algorithm must either handle these or fail loudly with a library
error — never hang, never return garbage silently.
"""

import numpy as np
import pytest

from repro.core.eim import eim
from repro.core.gonzalez import gonzalez
from repro.core.mrg import mrg
from repro.errors import MetricError, ReproError
from repro.metric.euclidean import EuclideanSpace
from repro.metric.kernels import as_points


class TestMalformedCoordinates:
    def test_nan_rejected_at_space_construction(self):
        pts = np.ones((10, 2))
        pts[3, 1] = np.nan
        with pytest.raises(MetricError, match="non-finite"):
            EuclideanSpace(pts)

    def test_inf_rejected(self):
        pts = np.ones((10, 2))
        pts[0, 0] = np.inf
        with pytest.raises(MetricError, match="non-finite"):
            EuclideanSpace(pts)

    def test_3d_array_rejected(self):
        with pytest.raises(MetricError):
            EuclideanSpace(np.ones((2, 3, 4)))

    def test_object_dtype_rejected(self):
        with pytest.raises((MetricError, ValueError, TypeError)):
            as_points(np.array([[object()], [object()]]))

    def test_all_errors_are_repro_errors(self):
        """Callers can catch the whole library with one except clause."""
        assert issubclass(MetricError, ReproError)


class TestDegenerateGeometries:
    @pytest.fixture
    def algorithms(self):
        return [
            ("GON", lambda s, k: gonzalez(s, k, seed=0)),
            ("MRG", lambda s, k: mrg(s, k, m=3, seed=0)),
            ("EIM", lambda s, k: eim(s, k, m=3, seed=0)),
        ]

    def test_all_points_identical(self, algorithms):
        space = EuclideanSpace(np.full((500, 3), 7.0))
        for name, run in algorithms:
            res = run(space, 3)
            assert res.radius == pytest.approx(0.0, abs=1e-7), name
            assert res.n_centers >= 1, name

    def test_two_distinct_locations(self, algorithms):
        pts = np.zeros((400, 2))
        pts[::2] = [10.0, 0.0]
        space = EuclideanSpace(pts)
        for name, run in algorithms:
            res = run(space, 2)
            assert res.radius == pytest.approx(0.0, abs=1e-7), name

    def test_collinear_points(self, algorithms):
        pts = np.zeros((300, 2))
        pts[:, 0] = np.linspace(0, 100, 300)
        space = EuclideanSpace(pts)
        for name, run in algorithms:
            res = run(space, 4)
            # 4 centers on a length-100 segment: radius around 100/8,
            # never worse than the 2/4/10-approx of that.
            assert res.radius <= 60.0, name

    def test_single_point(self, algorithms):
        space = EuclideanSpace(np.array([[1.0, 2.0]]))
        for name, run in algorithms:
            res = run(space, 5)
            assert res.n_centers == 1, name
            assert res.radius == 0.0, name

    def test_huge_coordinate_scale(self, algorithms):
        """1e8-scale coordinates: GEMM round-off must not produce negative
        or NaN distances anywhere in the pipeline."""
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(300, 3)) * 1e8
        space = EuclideanSpace(pts)
        for name, run in algorithms:
            res = run(space, 3)
            assert np.isfinite(res.radius), name
            assert res.radius >= 0.0, name

    def test_tiny_coordinate_scale(self, algorithms):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(300, 3)) * 1e-8
        space = EuclideanSpace(pts)
        for name, run in algorithms:
            res = run(space, 3)
            assert np.isfinite(res.radius) and res.radius >= 0.0, name

    def test_high_dimension(self, algorithms):
        rng = np.random.default_rng(0)
        space = EuclideanSpace(rng.normal(size=(200, 300)))
        for name, run in algorithms:
            res = run(space, 3)
            assert res.radius > 0, name
