"""Execution faults: infrastructure failures across every backend.

Data-level failures live in :mod:`tests.failure.test_malformed`; here
the *tasks* are fine and the world around them breaks — crashes, hangs,
stragglers, lost results, dead workers.  The contract under test is
:class:`repro.mapreduce.resilient.ResilientExecutor`'s: absorbable
faults cost latency but never correctness or accounting, and an
unabsorbable fault surfaces as a structured ``TaskFailedError`` in
bounded time instead of a hang or a half-finished round.
"""

import time
from functools import partial

import pytest

from repro.errors import InvalidParameterError, TaskFailedError
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
)
from repro.mapreduce.faults import ALWAYS, Fault, FaultSchedule, RandomFaults
from repro.mapreduce.resilient import FaultPolicy, ResilientExecutor

BACKENDS = ("sequential", "thread", "process")


def make_backend(name: str):
    if name == "sequential":
        return SequentialExecutor()
    if name == "thread":
        return ThreadPoolExecutorBackend(max_workers=2)
    return ProcessPoolExecutorBackend(max_workers=2)


def square(i: int) -> int:
    """Module-level so the process backend can pickle it."""
    return i * i


def make_tasks(n: int = 4):
    return [partial(square, i) for i in range(n)]


@pytest.fixture(params=BACKENDS)
def backend_name(request):
    return request.param


def run_resilient(backend_name, faults, policy=None, n_tasks=4, rounds=1):
    """Run ``rounds`` rounds of squaring tasks under ``faults``; return
    (per-round results, per-round stats, executor totals)."""
    results, stats = [], []
    with ResilientExecutor(
        make_backend(backend_name), policy or FaultPolicy(), faults
    ) as executor:
        for _ in range(rounds):
            values, times = executor.run(make_tasks(n_tasks))
            assert len(values) == len(times) == n_tasks
            results.append(values)
            stats.append(executor.pop_round_stats())
        totals = executor.totals
    return results, stats, totals


class TestRetries:
    def test_transient_crash_is_absorbed(self, backend_name):
        faults = FaultSchedule({(0, 1): Fault("crash")})
        (values,), (stats,), _ = run_resilient(backend_name, faults)
        assert values == [0, 1, 4, 9]
        assert stats.retries == 1
        assert stats.per_task_retries == [0, 1, 0, 0]
        assert stats.faults_injected == 1

    def test_dropped_result_is_not_leaked(self, backend_name):
        # "drop" runs the task then discards the result: the retry must
        # supply the answer and the lost attempt must count as waste.
        faults = FaultSchedule({(0, 2): Fault("drop")})
        (values,), (stats,), _ = run_resilient(backend_name, faults)
        assert values == [0, 1, 4, 9]
        assert stats.retries == 1
        assert stats.wasted_task_seconds >= 0.0

    def test_every_task_crashing_once_still_completes(self, backend_name):
        faults = FaultSchedule({(None, None): Fault("crash")})
        (values,), (stats,), _ = run_resilient(backend_name, faults)
        assert values == [0, 1, 4, 9]
        assert stats.retries == 4

    def test_exhausted_budget_raises_structured_error(self, backend_name):
        faults = FaultSchedule({(None, 2): Fault("crash", times=ALWAYS)})
        policy = FaultPolicy(max_retries=2)
        started = time.perf_counter()
        with ResilientExecutor(
            make_backend(backend_name), policy, faults
        ) as executor:
            with pytest.raises(TaskFailedError) as excinfo:
                executor.run(make_tasks())
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0, "exhausted budget must fail in bounded time"
        assert excinfo.value.task_index == 2
        assert excinfo.value.attempts == policy.max_retries + 1
        assert "retry budget" in str(excinfo.value)

    def test_backoff_delays_accumulate(self):
        faults = FaultSchedule({(0, 0): Fault("crash", times=2)})
        policy = FaultPolicy(max_retries=3, backoff=0.05, backoff_factor=2.0)
        started = time.perf_counter()
        (values,), (stats,), _ = run_resilient(
            "sequential", faults, policy=policy, n_tasks=1
        )
        elapsed = time.perf_counter() - started
        assert values == [0]
        assert stats.retries == 2
        # Two retries at 0.05 then 0.10 seconds of backoff.
        assert elapsed >= 0.15


class TestTimeouts:
    def test_hang_trips_timeout_and_retries(self, backend_name):
        faults = FaultSchedule({(0, 0): Fault("hang", seconds=1.0)})
        policy = FaultPolicy(max_retries=1, task_timeout=0.2)
        with ResilientExecutor(
            make_backend(backend_name), policy, faults
        ) as executor:
            started = time.perf_counter()
            values, _ = executor.run(make_tasks())
            elapsed = time.perf_counter() - started
            stats = executor.pop_round_stats()
            # Timed inside the context: closing a pool waits for the
            # abandoned attempt's worker, and that wait is not latency
            # the round's caller sees.
        assert values == [0, 1, 4, 9]
        assert stats.retries == 1
        if backend_name != "sequential":
            # Pooled backends abandon the hung attempt at the deadline
            # and relaunch; sequential can only discard it post-hoc, so
            # it necessarily sits through the sleep.
            assert elapsed < 1.0, "timeout must cut the hang short"

    def test_sequential_post_hoc_timeout_discards_late_result(self):
        # The sequential path cannot interrupt a task, but a result that
        # arrives past the deadline is still rejected and retried so the
        # semantics match the pooled backends.
        faults = FaultSchedule({(0, 1): Fault("delay", seconds=0.3)})
        policy = FaultPolicy(max_retries=1, task_timeout=0.05)
        (values,), (stats,), _ = run_resilient(
            "sequential", faults, policy=policy
        )
        assert values == [0, 1, 4, 9]
        assert stats.retries == 1
        assert stats.wasted_task_seconds >= 0.3


class TestSpeculation:
    def test_duplicate_fault_is_deduplicated(self, backend_name):
        faults = FaultSchedule({(0, 3): Fault("duplicate")})
        (values,), (stats,), _ = run_resilient(backend_name, faults)
        assert values == [0, 1, 4, 9], "dedup must keep exactly one result"
        assert stats.speculative_launches >= 1

    @pytest.mark.parametrize("pool", ["thread", "process"])
    def test_speculative_clone_beats_straggler(self, pool):
        faults = FaultSchedule({(0, 0): Fault("delay", seconds=1.5)})
        policy = FaultPolicy(max_retries=1, speculate_after=0.1)
        with ResilientExecutor(
            make_backend(pool), policy, faults
        ) as executor:
            started = time.perf_counter()
            values, _ = executor.run(make_tasks(2))
            elapsed = time.perf_counter() - started
            stats = executor.pop_round_stats()
        assert values == [0, 1]
        assert stats.speculative_launches >= 1
        assert stats.speculative_wins >= 1
        assert elapsed < 1.5, "the clone should win before the straggler"


class TestWorkerDeath:
    def test_dead_worker_is_replaced_and_round_completes(self):
        # os._exit in a worker breaks the whole pool; the executor must
        # drop the corpse, re-open, re-dispatch, and stay warm after.
        faults = FaultSchedule({(0, 1): Fault("die")})
        results, stats, totals = run_resilient(
            "process", faults, policy=FaultPolicy(max_retries=2), rounds=2
        )
        assert results == [[0, 1, 4, 9], [0, 1, 4, 9]]
        assert stats[0].retries >= 1
        assert stats[1].retries == 0, "round 2 runs clean on the new pool"
        assert totals.retries == stats[0].retries

    def test_die_in_driver_degrades_to_crash(self):
        # On the sequential backend the task runs in the driver process;
        # "die" must not take the test runner down with it.
        faults = FaultSchedule({(0, 0): Fault("die")})
        (values,), (stats,), _ = run_resilient("sequential", faults, n_tasks=2)
        assert values == [0, 1]
        assert stats.retries == 1


class TestDeterminism:
    def test_random_faults_are_a_pure_function_of_seed(self):
        a = RandomFaults(seed=7, rate=0.5, kinds=("crash", "delay", "drop"))
        b = RandomFaults(seed=7, rate=0.5, kinds=("crash", "delay", "drop"))
        grid = [(r, t) for r in range(6) for t in range(10)]
        decisions_a = [a.fault_for(r, t) for r, t in grid]
        decisions_b = [b.fault_for(r, t) for r, t in grid]
        assert decisions_a == decisions_b
        assert any(f is not None for f in decisions_a)
        assert any(f is None for f in decisions_a)

    def test_different_seeds_give_different_schedules(self):
        grid = [(r, t) for r in range(4) for t in range(16)]
        a = [RandomFaults(seed=1, rate=0.5).fault_for(r, t) for r, t in grid]
        b = [RandomFaults(seed=2, rate=0.5).fault_for(r, t) for r, t in grid]
        assert a != b

    def test_schedule_wildcard_precedence(self):
        schedule = FaultSchedule(
            {
                (0, 1): Fault("crash"),
                (None, 1): Fault("delay", seconds=0.01),
                (0, None): Fault("drop"),
                (None, None): Fault("duplicate"),
            }
        )
        assert schedule.fault_for(0, 1).kind == "crash"
        assert schedule.fault_for(5, 1).kind == "delay"
        assert schedule.fault_for(0, 9).kind == "drop"
        assert schedule.fault_for(5, 9).kind == "duplicate"


class TestGuardRails:
    def test_nesting_resilient_executors_is_refused(self):
        with pytest.raises(InvalidParameterError, match="nesting"):
            ResilientExecutor(ResilientExecutor())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"task_timeout": 0.0},
            {"backoff": -0.1},
            {"speculate_after": -1.0},
            {"max_clones": -1},
        ],
    )
    def test_policy_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            FaultPolicy(**kwargs)

    def test_totals_fold_across_rounds(self):
        faults = FaultSchedule({(None, 0): Fault("crash")})
        _, stats, totals = run_resilient("sequential", faults, rounds=3)
        assert [s.retries for s in stats] == [1, 1, 1]
        assert totals.retries == 3
        assert totals.faults_injected == 3
