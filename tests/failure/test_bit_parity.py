"""Bit-parity under chaos: the ISSUE's acceptance gate.

For every registered solver, a seeded random fault schedule that stays
within the retry budget must leave the result *bit-identical* to the
fault-free sequential run — same centers, same radius, and the same
per-round ``dist_evals`` (retried work is re-executed, then deduplicated,
so the accounting never double-counts).  A schedule that exhausts the
budget must surface a structured :class:`~repro.errors.TaskFailedError`
in bounded time with no partial result escaping.
"""

import time

import numpy as np
import pytest

import repro
from repro.errors import TaskFailedError
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
)
from repro.mapreduce.faults import ALWAYS, Fault, FaultSchedule, RandomFaults
from repro.mapreduce.resilient import FaultPolicy
from repro.solvers.registry import get_solver, solver_names

# An absorbable but mean schedule: nearly a third of all tasks crash,
# straggle, lose their result, or spawn a duplicate — and the policy
# has enough retries to soak all of it.
CHAOS = dict(rate=0.3, kinds=("crash", "delay", "drop", "duplicate"))
POLICY = FaultPolicy(max_retries=4, speculate_after=None)

# Per-solver workloads sized so every solver runs its real code path
# (eim's threshold must stay below n or it falls back to plain GON;
# exact's oracle refuses large C(n, k)).
CASES = {
    "eim": (600, 4, {"m": 4, "eps": 0.3, "threshold_coeff": 0.05}),
    "exact": (18, 2, {}),
    "gon": (400, 5, {}),
    "hs": (400, 5, {}),
    "mrg": (600, 4, {"m": 4}),
    "mrhs": (600, 4, {"m": 4}),
    "stream": (400, 5, {}),
}


@pytest.fixture(scope="module")
def spaces():
    rng = np.random.default_rng(42)
    return {n: rng.normal(size=(n, 3)) for n in {n for n, _, _ in CASES.values()}}


def make_backend(name):
    if name == "sequential":
        return SequentialExecutor()
    if name == "thread":
        return ThreadPoolExecutorBackend(max_workers=2)
    return ProcessPoolExecutorBackend(max_workers=2)


def assert_bit_identical(faulted, clean):
    assert faulted.algorithm == clean.algorithm
    assert faulted.radius == clean.radius, "radius must be bit-identical"
    np.testing.assert_array_equal(faulted.centers, clean.centers)
    if clean.stats is not None:
        assert faulted.stats is not None
        assert faulted.stats.dist_evals == clean.stats.dist_evals
        # Per-round parity: dedup folds exactly one attempt per task, so
        # retries and duplicates never inflate a round's accounting.
        clean_rounds = [(r.label, r.dist_evals) for r in clean.stats.rounds]
        fault_rounds = [(r.label, r.dist_evals) for r in faulted.stats.rounds]
        assert fault_rounds == clean_rounds


class TestBitParity:
    def test_all_solvers_are_covered(self):
        assert set(CASES) == set(solver_names()), (
            "a newly registered solver must join the parity gate"
        )

    @pytest.mark.parametrize("fault_seed", [1, 2])
    @pytest.mark.parametrize("algo", sorted(CASES))
    def test_solver_bit_identical_under_random_faults(
        self, spaces, algo, fault_seed
    ):
        n, k, opts = CASES[algo]
        rows = spaces[n]
        clean = repro.solve(rows, k, algo, seed=3, **opts)
        faulted = repro.solve(
            rows,
            k,
            algo,
            seed=3,
            fault_policy=POLICY,
            fault_injector=RandomFaults(seed=fault_seed, **CHAOS),
            **opts,
        )
        assert_bit_identical(faulted, clean)

    @pytest.mark.parametrize(
        "algo,backend",
        # Every MapReduce solver runs the full chaos matrix on both pool
        # backends: since the TaskSpec refactor, eim's rounds are
        # module-level tasks and pickle like mrg/mrhs's, so process-pool
        # fan-out with fault injection is covered for all three.
        [
            (a, backend)
            for a in sorted(CASES)
            if "executor" in get_solver(a).shared
            for backend in ("thread", "process")
        ],
    )
    def test_mapreduce_solvers_on_pool_backends(self, spaces, algo, backend):
        n, k, opts = CASES[algo]
        rows = spaces[n]
        clean = repro.solve(rows, k, algo, seed=3, **opts)
        with make_backend(backend) as executor:
            faulted = repro.solve(
                rows,
                k,
                algo,
                seed=3,
                executor=executor,
                fault_policy=POLICY,
                fault_injector=RandomFaults(seed=1, **CHAOS),
                **opts,
            )
        assert_bit_identical(faulted, clean)

    def test_solve_many_batch_bit_identical_under_faults(self, spaces):
        rows = spaces[600]
        clean = repro.solve_many(rows, 4, ["gon", "mrg", "hs"], seeds=[0, 1], m=4)
        faulted = repro.solve_many(
            rows,
            4,
            ["gon", "mrg", "hs"],
            seeds=[0, 1],
            m=4,
            fault_policy=POLICY,
            fault_injector=RandomFaults(seed=2, **CHAOS),
        )
        assert set(faulted.keys()) == set(clean.keys())
        for key, clean_result in clean.items():
            assert_bit_identical(faulted[key], clean_result)
        assert faulted.summary.dist_evals == clean.summary.dist_evals


class TestExhaustedBudget:
    @pytest.mark.parametrize("algo", ["mrg", "gon"])
    def test_unabsorbable_schedule_fails_structurally(self, spaces, algo):
        n, k, opts = CASES[algo]
        rows = spaces[n]
        started = time.perf_counter()
        with pytest.raises(TaskFailedError) as excinfo:
            repro.solve(
                rows,
                k,
                algo,
                seed=3,
                fault_policy=FaultPolicy(max_retries=1),
                fault_injector=FaultSchedule(
                    {(None, 0): Fault("crash", times=ALWAYS)}
                ),
                **opts,
            )
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0, "budget exhaustion must fail in bounded time"
        assert excinfo.value.task_index == 0
        assert excinfo.value.attempts == 2

    def test_no_partial_result_escapes(self, spaces):
        # The counter side-effects of a doomed run must not leak into
        # the caller-visible space accounting beyond the failed round.
        rows = spaces[400]
        clean = repro.solve(rows, 5, "gon", seed=3)
        with pytest.raises(TaskFailedError):
            repro.solve(
                rows,
                5,
                "gon",
                seed=3,
                fault_policy=FaultPolicy(max_retries=0),
                fault_injector=FaultSchedule(
                    {(None, None): Fault("crash", times=ALWAYS)}
                ),
            )
        # The library is still healthy: the same solve succeeds after.
        again = repro.solve(rows, 5, "gon", seed=3)
        assert_bit_identical(again, clean)
