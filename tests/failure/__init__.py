"""Failure-injection suite: malformed inputs, degenerate geometries,
and deterministic execution faults (crashes, hangs, stragglers, worker
death) driven through every executor backend.

Modules
-------
test_malformed
    Data-level failures: non-finite coordinates, bad shapes, collapsed
    and extreme geometries.  Every algorithm must handle them or fail
    loudly with a library error.
test_execution_faults
    Infrastructure-level failures injected via
    :mod:`repro.mapreduce.faults` and absorbed (or surfaced as
    structured errors) by :class:`repro.mapreduce.resilient.ResilientExecutor`.
test_bit_parity
    The acceptance gate: any absorbable fault schedule leaves every
    registered solver bit-identical to its fault-free sequential run.
"""
