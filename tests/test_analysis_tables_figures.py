"""Unit tests for table/figure builders and the paper-number embedding."""

import numpy as np
import pytest

from repro.analysis.experiments import RunRecord
from repro.analysis.figures import FigureSeries, ascii_chart, series_over_k
from repro.analysis.paper import (
    PAPER_K_GRID,
    PAPER_PHI_GRID,
    SOLUTION_TABLES,
    TABLE2,
    TABLE6,
    TABLE7,
)
from repro.analysis.tables import (
    phi_table,
    runtime_table,
    side_by_side,
    solution_value_table,
)
from repro.errors import ExperimentError


def _rec(algo, k, radius=1.0, t=0.1):
    return RunRecord(
        experiment="t", dataset="d", n=10, instance=0, run=0,
        algorithm=algo, k=k, radius=radius, parallel_time=t,
        wall_time=t, cpu_time=t, rounds=1, dist_evals=0,
    )


def _full_grid(algos=("MRG", "EIM", "GON"), ks=(2, 5)):
    out = []
    for i, a in enumerate(algos):
        for k in ks:
            out.append(_rec(a, k, radius=k + i, t=0.1 * (i + 1)))
            out.append(_rec(a, k, radius=k + i + 1, t=0.1 * (i + 1)))
    return out


class TestPaperNumbers:
    def test_k_grid(self):
        assert PAPER_K_GRID == (2, 5, 10, 25, 50, 100)
        for table_id, (_, table) in SOLUTION_TABLES.items():
            assert tuple(sorted(table)) == PAPER_K_GRID, table_id

    def test_tables_have_three_columns(self):
        for _, (_, table) in SOLUTION_TABLES.items():
            assert all(len(row) == 3 for row in table.values())

    def test_phi_tables_have_four_columns(self):
        assert len(PAPER_PHI_GRID) == 4
        assert all(len(v) == 4 for v in TABLE6.values())
        assert all(len(v) == 4 for v in TABLE7.values())

    def test_spot_checks_from_pdf(self):
        assert TABLE2[25] == (0.961, 0.854, 0.961)
        assert TABLE7[100] == (0.726, 0.757, 3.78, 3.59)


class TestTableBuilders:
    def test_solution_table_layout(self):
        headers, rows = solution_value_table(_full_grid(), ks=(2, 5))
        assert headers == ["k", "MRG", "EIM", "GON"]
        assert rows[0][0] == 2
        # radius mean of k+i and k+i+1 = k+i+0.5
        assert rows[0][1] == pytest.approx(2.5)
        assert rows[0][3] == pytest.approx(4.5)

    def test_runtime_table(self):
        headers, rows = runtime_table(_full_grid(), ks=(2, 5))
        assert rows[0][1] == pytest.approx(0.1)
        assert rows[0][2] == pytest.approx(0.2)

    def test_missing_grid_point_detected(self):
        with pytest.raises(ExperimentError, match="missing"):
            solution_value_table(_full_grid(ks=(2,)), ks=(2, 5))

    def test_phi_table(self):
        algos = tuple(f"EIM(phi={p:g})" for p in (1.0, 8.0))
        recs = _full_grid(algos=algos, ks=(2,))
        headers, rows = phi_table(recs, "radius", phis=(1.0, 8.0), ks=(2,))
        assert headers == ["k", "phi=1", "phi=8"]
        assert len(rows) == 1

    def test_side_by_side(self):
        headers, rows = side_by_side(
            [[2, 1.0, 2.0, 3.0], [100, 4.0, 5.0, 6.0]], TABLE2
        )
        assert len(headers) == 7
        assert rows[0][0] == 2
        assert rows[0][2] == TABLE2[2][0]  # paper value interleaved

    def test_side_by_side_column_mismatch(self):
        with pytest.raises(ExperimentError, match="columns"):
            side_by_side([[2, 1.0]], TABLE2)

    def test_side_by_side_empty(self):
        with pytest.raises(ExperimentError, match="no measured rows"):
            side_by_side([], TABLE2)


class TestFigures:
    def test_series_over_k(self):
        series = series_over_k(_full_grid(), "radius", ["MRG", "GON"], [2, 5])
        assert [s.label for s in series] == ["MRG", "GON"]
        assert series[0].x == [2.0, 5.0]
        assert series[0].y[0] == pytest.approx(2.5)

    def test_series_missing_point(self):
        with pytest.raises(ExperimentError, match="missing"):
            series_over_k(_full_grid(ks=(2,)), "radius", ["MRG"], [2, 5])

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            FigureSeries("x", [1.0, 2.0], [1.0])

    def test_ascii_chart_renders(self):
        series = [
            FigureSeries("fast", [1, 10, 100], [0.001, 0.01, 0.1]),
            FigureSeries("slow", [1, 10, 100], [0.1, 1.0, 10.0]),
        ]
        chart = ascii_chart(series, title="demo", xlabel="k")
        assert "demo" in chart
        assert "o fast" in chart and "x slow" in chart
        assert "k" in chart

    def test_ascii_chart_linear_scale(self):
        series = [FigureSeries("s", [0, 1], [0.0, 5.0])]
        chart = ascii_chart(series, logy=False)
        assert "o s" in chart

    def test_ascii_chart_empty_rejected(self):
        with pytest.raises(ExperimentError):
            ascii_chart([])

    def test_ascii_chart_log_needs_positive(self):
        with pytest.raises(ExperimentError, match="positive"):
            ascii_chart([FigureSeries("s", [0.0], [0.0])])
