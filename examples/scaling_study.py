#!/usr/bin/env python
"""Scaling study: when does parallel k-center pay off?

Run::

    python examples/scaling_study.py

Sweeps n with the paper's three algorithms on GAU data — plus the
one-pass streaming doubling solver, the *sequential-pass* scaling route
the sharded algorithms are the alternative to — and prints the measured
runtimes next to the Table 1 cost-model predictions, including

* the MRG-over-GON speedup trend (should approach ~m for large n);
* EIM's predicted slowdown factor n^eps (1-n^-eps)^-2 log(n);
* STREAM's single-pass time against GON's k-pass time (both O(kn)
  distance evaluations, but the stream touches each point once);
* the machine-capacity arithmetic of Eq. (1) for the chosen cluster.
"""

from __future__ import annotations

from repro import EuclideanSpace, gau, solve
from repro.core.theory import eim_expected_slowdown, gon_cost, mrg_cost
from repro.mapreduce.model import default_capacity, mrg_rounds_needed
from repro.utils.tables import format_table

M = 50
K = 10


def main() -> None:
    print(f"scaling study: k={K}, m={M} simulated machines\n")

    rows = []
    stream_rows = []
    for n in (10_000, 30_000, 100_000):
        space = EuclideanSpace(gau(n, k_prime=10, seed=5))
        r_gon = solve(space, K, algorithm="gon", seed=0)
        t_gon = r_gon.wall_time
        r_mrg = solve(space, K, algorithm="mrg", m=M, seed=0, evaluate=False)
        r_eim = solve(space, K, algorithm="eim", m=M, seed=0, evaluate=False)
        r_stream = solve(space, K, algorithm="stream", seed=0)
        t_mrg = r_mrg.stats.parallel_time
        t_eim = r_eim.stats.parallel_time
        rows.append(
            [
                n,
                t_gon,
                t_mrg,
                t_eim,
                t_gon / t_mrg,
                t_eim / t_mrg,
                eim_expected_slowdown(n),
            ]
        )
        stream_rows.append(
            [
                n,
                r_stream.wall_time,
                t_gon / r_stream.wall_time,
                r_stream.radius / r_gon.radius,
                r_stream.extra["doublings"],
                r_stream.extra["threshold"],
            ]
        )
    print(
        format_table(
            ["n", "GON (s)", "MRG (s)", "EIM (s)", "GON/MRG", "EIM/MRG",
             "predicted EIM/MRG"],
            rows,
            title="measured runtimes vs the Section-5 predictions",
        )
    )

    # The streaming pass: the other way to scale past one machine's k
    # passes — one pass, O(k) memory, an 8-approximation with a
    # per-run certificate (threshold < OPT).
    print()
    print(
        format_table(
            ["n", "STREAM (s)", "GON/STREAM", "radius vs GON",
             "doublings", "certified OPT >"],
            stream_rows,
            title="one-pass streaming doubling vs the GON baseline",
        )
    )

    # Cost-model sanity: the modelled op-count ratio at the largest n.
    n = rows[-1][0]
    model_ratio = gon_cost(n, K) / mrg_cost(n, K, M)
    print(f"\ncost-model GON/MRG op ratio at n={n}: {model_ratio:.1f} "
          f"(upper-bounded by m={M}; measured {rows[-1][4]:.1f})")

    # Capacity arithmetic for this cluster (Eq. (1)).
    c = default_capacity(n, K, M)
    print(f"smallest two-round capacity for (n={n}, k={K}, m={M}): c={c} "
          f"-> {mrg_rounds_needed(n, K, M, c)} MapReduce rounds")
    tight = max(n // M, 2 * K + 1)
    print(f"with a tight capacity c={tight}: "
          f"{mrg_rounds_needed(n, K, M, max(tight, -(-n // M)))} rounds "
          "(extra rounds add +2 to the approximation factor each)")


if __name__ == "__main__":
    main()
