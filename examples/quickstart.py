#!/usr/bin/env python
"""Quickstart: cluster a point set with all three k-center algorithms.

Run::

    python examples/quickstart.py

This walks the public API end to end: build a metric space, run the
sequential baseline (GON), the fast parallel algorithm (MRG) and the
sampling algorithm (EIM) through the unified :func:`repro.solve` facade,
then compare solution quality, simulated parallel runtimes and the
certified optimality gap.
"""

from __future__ import annotations

import numpy as np

from repro import EuclideanSpace, gau, greedy_lower_bound, solve
from repro.utils.tables import format_table


def main() -> None:
    # A GAU workload like the paper's Table 2 (scaled down): 25 Gaussian
    # clusters in a cube of side 100.
    n, k = 50_000, 25
    points = gau(n, k_prime=25, seed=42)
    space = EuclideanSpace(points)

    print(f"clustering n={n} points into k={k} centers\n")

    # One entry point for every registered algorithm: repro.solve.
    results = [
        solve(space, k, algorithm="gon", seed=0),  # sequential 2-approx
        solve(space, k, algorithm="mrg", m=50, seed=0),  # 2-round MR, 4-approx
        solve(space, k, algorithm="eim", m=50, seed=0),  # sampling, 10-approx w.s.p.
    ]

    # Certified lower bound on the optimum: any solution value divided by
    # this is an upper bound on its true approximation ratio.
    lb = greedy_lower_bound(space, k)

    rows = []
    for res in results:
        rows.append(
            [
                res.algorithm,
                res.radius,
                res.radius / lb,
                res.approx_factor if res.approx_factor else "none",
                res.parallel_time,
                res.n_rounds if res.n_rounds else "n/a",
            ]
        )
    print(
        format_table(
            ["algorithm", "radius", "<= ratio vs OPT", "guarantee",
             "runtime (s)", "MR rounds"],
            rows,
            title="k-center results (runtime = simulated parallel time)",
        )
    )

    mrg_result = results[1]
    speedup = results[0].wall_time / mrg_result.stats.parallel_time
    print(f"\nMRG simulated-parallel speedup over sequential GON: {speedup:.1f}x")
    print(f"EIM main-loop iterations: {results[2].extra['iterations']}")

    # Every algorithm returns center *indices*; recover coordinates with:
    centers_xyz = points[mrg_result.centers]
    assert centers_xyz.shape == (k, points.shape[1])
    print(f"\nfirst MRG center at {np.round(centers_xyz[0], 2).tolist()}")


if __name__ == "__main__":
    main()
