#!/usr/bin/env python
"""Facility placement: minimise the worst-case travel distance.

Run::

    python examples/facility_placement.py

The paper's introduction motivates k-center with vehicle routing: place k
depots among delivery addresses so the farthest address is as close as
possible to its depot.  This example simulates a metro area (dense urban
core, sprawling suburbs, a few remote villages), places depots with MRG,
and reports per-depot service areas — including how the remote villages
force dedicated depots, which is exactly the max-distance (not average-
distance) behaviour that distinguishes k-center from k-means/k-median.
"""

from __future__ import annotations

import numpy as np

from repro import EuclideanSpace, assign, solve
from repro.core.assignment import cluster_sizes
from repro.utils.rng import as_generator
from repro.utils.tables import format_table


def make_metro_area(n: int = 40_000, seed: int = 7) -> np.ndarray:
    """Addresses in km coordinates: core + suburbs + remote villages."""
    rng = as_generator(seed)
    core = rng.normal(loc=[0, 0], scale=3.0, size=(int(n * 0.6), 2))
    suburbs = np.concatenate(
        [
            rng.normal(loc=center, scale=2.0, size=(int(n * 0.12), 2))
            for center in ([18, 5], [-15, 12], [4, -20])
        ]
    )
    villages = np.concatenate(
        [
            rng.normal(loc=center, scale=0.8, size=(int(n * 0.01), 2))
            for center in ([45, 40], [-40, -35], [50, -25], [-35, 42])
        ]
    )
    return np.concatenate([core, suburbs, villages])


def main() -> None:
    addresses = make_metro_area()
    space = EuclideanSpace(addresses)
    k = 8

    print(f"placing {k} depots for {space.n} addresses\n")

    plan = solve(space, k, algorithm="mrg", m=20, seed=1)
    labels, dists = assign(space, plan.centers)
    sizes = cluster_sizes(labels, plan.n_centers)

    rows = []
    for depot in range(plan.n_centers):
        members = labels == depot
        rows.append(
            [
                depot,
                f"({addresses[plan.centers[depot], 0]:+.1f}, "
                f"{addresses[plan.centers[depot], 1]:+.1f})",
                int(sizes[depot]),
                dists[members].max(),
                dists[members].mean(),
            ]
        )
    rows.sort(key=lambda r: -r[2])
    print(
        format_table(
            ["depot", "location (km)", "addresses", "worst km", "mean km"],
            rows,
            title="service areas (worst-case distance is the k-center objective)",
        )
    )
    print(f"\nworst-case travel distance: {plan.radius:.2f} km")
    print(f"plan computed in {plan.stats.parallel_time * 1e3:.1f} ms of "
          f"simulated parallel time over {plan.n_rounds} MapReduce rounds")

    # Sanity: the sequential baseline agrees on the objective's scale.
    baseline = solve(space, k, algorithm="gon", seed=1)
    print(f"sequential baseline (GON) worst-case: {baseline.radius:.2f} km")

    # The remote villages are tiny but force dedicated depots: the
    # smallest service areas should be village-sized (~n * 0.01 each).
    village_like = [r for r in rows if r[2] < space.n * 0.05]
    print(f"\n{len(village_like)} depots serve remote low-density areas — "
          "k-center pays for the farthest customer, not the average one.")


if __name__ == "__main__":
    main()
