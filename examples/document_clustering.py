#!/usr/bin/env python
"""Document clustering under non-Euclidean metrics.

Run::

    python examples/document_clustering.py

The paper frames k-center as bounding "the least similar document" in
every cluster.  This example builds bag-of-words-style term-frequency
vectors for synthetic documents drawn from a handful of topics, clusters
them under the L1 (city-block) metric — a standard histogram distance —
and verifies the guarantee: every document is within the reported radius
of its cluster representative.  It also shows the PrecomputedSpace route
for users whose dissimilarities come from an external source, and
compares GON with the Hochbaum-Shmoys baseline the paper's future-work
section points to.
"""

from __future__ import annotations

import numpy as np

from repro import (
    MinkowskiSpace,
    PrecomputedSpace,
    assign,
    greedy_lower_bound,
    solve,
    solve_many,
)
from repro.utils.rng import as_generator
from repro.utils.tables import format_table

VOCAB = 300
TOPICS = 6


def make_corpus(n_docs: int = 3000, seed: int = 11):
    """Term-frequency vectors with topic structure (returns tf, topics)."""
    rng = as_generator(seed)
    # Each topic concentrates on its own slice of the vocabulary.
    topic_dists = rng.dirichlet(np.full(VOCAB, 0.05), size=TOPICS)
    topics = rng.integers(0, TOPICS, size=n_docs)
    lengths = rng.integers(50, 400, size=n_docs)
    tf = np.empty((n_docs, VOCAB))
    for t in range(TOPICS):
        members = np.flatnonzero(topics == t)
        counts = rng.multinomial(1, topic_dists[t], size=(len(members), 1))
        # Draw each document's words in one multinomial of its length.
        for row, doc in enumerate(members):
            tf[doc] = rng.multinomial(lengths[doc], topic_dists[t])
    # Normalise to frequencies so document length does not dominate.
    return tf / tf.sum(axis=1, keepdims=True), topics


def main() -> None:
    tf, topics = make_corpus()
    space = MinkowskiSpace(tf, p=1.0)  # L1: histogram difference in [0, 2]
    k = TOPICS

    print(f"clustering {space.n} documents (vocab {VOCAB}) into {k} groups, L1 metric\n")

    result = solve(space, k, algorithm="gon", seed=0)
    labels, dists = assign(space, result.centers)

    rows = []
    for c in range(result.n_centers):
        members = labels == c
        purity = np.bincount(topics[members], minlength=TOPICS).max() / members.sum()
        rows.append([c, int(members.sum()), dists[members].max(), purity])
    print(
        format_table(
            ["cluster", "docs", "least-similar distance", "topic purity"],
            rows,
            title="GON clusters (radius bounds the least similar document)",
        )
    )
    print(f"\nmax dissimilarity to a representative: {result.radius:.3f} "
          "(L1 on frequencies is at most 2.0)")

    lb = greedy_lower_bound(space, k)
    print(f"certified: no k={k} clustering can do better than {lb:.3f}; "
          f"GON is within {result.radius / lb:.2f}x of optimal")

    # The guarantee, checked directly.
    assert dists.max() <= result.radius + 1e-9

    # --- Alternative baseline (paper future work): Hochbaum-Shmoys ------
    sample = np.arange(0, space.n, 4, dtype=np.intp)  # HS is O(n^2): subsample
    sub = space.local(sample)
    # Head-to-head comparison in one registry-driven batch call.
    pair = solve_many(sub, k, algorithms=("hs", "gon"), seeds=(0,))
    hs = pair["hs", 0]
    gon_sub = pair["gon", 0]
    print(f"\non a {sub.n}-document subsample: HS radius {hs.radius:.3f} "
          f"vs GON radius {gon_sub.radius:.3f} (both 2-approximations)")

    # --- Bring-your-own-dissimilarity route ------------------------------
    # Users with externally computed dissimilarities (e.g. edit distances)
    # wrap them in a PrecomputedSpace; everything downstream is identical.
    tiny = sub.local(np.arange(200, dtype=np.intp))
    dmat = tiny.cross(None, None)
    external = PrecomputedSpace(dmat)
    ext_result = solve(external, k, algorithm="gon", seed=0)
    print(f"PrecomputedSpace route on 200 documents: radius {ext_result.radius:.3f}")


if __name__ == "__main__":
    main()
