#!/usr/bin/env python
"""Exploring EIM's phi parameter: runtime vs approximation confidence.

Run::

    python examples/phi_tradeoff.py

Section 6 of the paper introduces phi — the pivot's rank in the sampled
pool — and shows the 10-approximation survives for phi above a threshold
(quoted as 5.15), while Section 8.3 finds that *in practice* phi well
below the threshold is faster and sometimes better.  This example
reproduces that exploration on one workload and annotates each phi with
its theoretical status from :mod:`repro.core.theory`.
"""

from __future__ import annotations

from repro import EuclideanSpace, gau, solve, solve_many
from repro.core.theory import PHI_PAPER_THRESHOLD, phi_feasibility_threshold, phi_feasible
from repro.utils.tables import format_table


def main() -> None:
    n, k = 60_000, 25
    space = EuclideanSpace(gau(n, k_prime=25, seed=9))
    baseline = solve(space, k, algorithm="gon", seed=0)

    print(f"EIM phi sweep on GAU (n={n}, k'=k={k}); "
          f"GON baseline radius {baseline.radius:.3f}\n")
    print(f"paper-quoted feasibility threshold: phi > {PHI_PAPER_THRESHOLD}")
    print(f"Inequality (2) solved exactly:      phi > "
          f"{phi_feasibility_threshold():.3f}\n")

    # One batch call fans the whole phi sweep out through the registry;
    # the per-entry label keeps each variant's key distinct.
    phis = (1.0, 2.0, 4.0, 6.0, 8.0, 12.0)
    sweep = solve_many(
        space,
        k,
        algorithms=[("eim", {"phi": phi, "label": f"phi={phi:g}"}) for phi in phis],
        seeds=(0,),
        m=50,
    )
    rows = []
    for phi, res in zip(phis, sweep.values()):
        status = "guaranteed (10x w.s.p.)" if phi_feasible(phi) else "no guarantee"
        rows.append(
            [
                phi,
                status,
                res.extra["iterations"],
                res.extra["candidate_size"],
                res.stats.parallel_time,
                res.radius,
                res.radius / baseline.radius,
            ]
        )
    print(
        format_table(
            ["phi", "theory", "iters", "|sample|", "runtime (s)", "radius",
             "vs GON"],
            rows,
            title="the phi trade-off (Table 6/7 of the paper, one workload)",
        )
    )

    fastest = min(rows, key=lambda r: r[4])
    best = min(rows, key=lambda r: r[5])
    print(f"\nfastest: phi={fastest[0]:g} at {fastest[4]:.3f}s; "
          f"best quality: phi={best[0]:g} at radius {best[5]:.3f}")
    print("lowering phi moves the pivot farther out, removing more of R per "
          "iteration — fewer iterations, smaller samples, and (on clustered "
          "data) fewer perimeter points selected.")


if __name__ == "__main__":
    main()
